"""Operator construction and property binding (positions -> attributes)."""

import pytest

from repro.core import (
    AnnotationMode,
    EmitBounds,
    FieldMap,
    FieldSet,
    MapOp,
    MatchOp,
    PlanError,
    ReduceOp,
    Source,
    UdfProperties,
    attrs,
    binary_udf,
    map_udf,
    reduce_udf,
)
from tests.conftest import concat_udf, identity_udf, paper_f2

AB = attrs("i.a", "i.b")
CD = attrs("j.c", "j.d")


class TestConstruction:
    def test_source_needs_schema(self):
        with pytest.raises(Exception):
            Source("s", ())

    def test_map_wrong_udf_kind(self):
        with pytest.raises(PlanError):
            MapOp("m", reduce_udf(identity_udf), FieldMap(AB))

    def test_reduce_needs_keys(self):
        with pytest.raises(PlanError):
            ReduceOp("r", reduce_udf(identity_udf), FieldMap(AB), ())

    def test_match_key_arity_mismatch(self):
        with pytest.raises(PlanError):
            MatchOp("m", binary_udf(concat_udf), FieldMap(AB), FieldMap(CD), (0, 1), (0,))

    @pytest.mark.parametrize("name", ["", "a(b", "a)b", "a,b"])
    def test_reserved_name_characters_rejected(self, name):
        """'(', ')' and ',' are reserved by the signature-key rendering;
        allowing them would break its injectivity (and with it the
        feedback statistics store's keying)."""
        from repro.core.errors import SchemaError

        with pytest.raises(SchemaError, match="invalid operator name"):
            MapOp(name, map_udf(identity_udf), FieldMap(AB))


class TestBinding:
    def test_manual_reads_bound_to_attrs(self):
        props = UdfProperties(reads=FieldSet.of((0, 1)), emit_bounds=EmitBounds.exactly(1))
        op = MapOp("m", map_udf(identity_udf, props), FieldMap(AB))
        bound = op.bound_props(AnnotationMode.MANUAL)
        assert bound.reads == frozenset({AB[1]})
        assert bound.writes == frozenset()

    def test_new_positions_become_new_attrs(self):
        props = UdfProperties(
            writes_modified=FieldSet.of(5), emit_bounds=EmitBounds.exactly(1)
        )
        op = MapOp("m", map_udf(identity_udf, props), FieldMap(AB))
        bound = op.bound_props(AnnotationMode.MANUAL)
        assert {a.name for a in bound.new_attrs} == {"m.f5"}
        assert bound.new_attrs <= bound.writes

    def test_projection_resolved_against_width(self):
        props = UdfProperties(
            writes_projected=FieldSet.all_except(0),
            emit_bounds=EmitBounds.exactly(1),
        )
        op = MapOp("m", map_udf(identity_udf, props), FieldMap(AB))
        bound = op.bound_props(AnnotationMode.MANUAL)
        assert bound.projected == frozenset({AB[1]})

    def test_copy_to_same_attr_is_neither_read_nor_write(self):
        props = UdfProperties(
            copies=frozenset({(0, 0, 0)}), emit_bounds=EmitBounds.exactly(1)
        )
        op = MapOp("m", map_udf(identity_udf, props), FieldMap(AB))
        bound = op.bound_props(AnnotationMode.MANUAL)
        assert bound.reads == frozenset()
        assert bound.writes == frozenset()

    def test_copy_to_other_position_is_read_plus_write(self):
        props = UdfProperties(
            copies=frozenset({(1, 0, 0)}), emit_bounds=EmitBounds.exactly(1)
        )
        op = MapOp("m", map_udf(identity_udf, props), FieldMap(AB))
        bound = op.bound_props(AnnotationMode.MANUAL)
        assert bound.reads == frozenset({AB[0]})
        assert bound.modified == frozenset({AB[1]})

    def test_sca_mode_derives_from_bytecode(self):
        op = MapOp("m", map_udf(paper_f2), FieldMap(AB))
        bound = op.bound_props(AnnotationMode.SCA)
        assert bound.reads == frozenset({AB[0]})
        assert bound.emit_bounds.filter_like

    def test_manual_mode_requires_annotation(self):
        op = MapOp("m", map_udf(paper_f2), FieldMap(AB))
        with pytest.raises(Exception):
            op.bound_props(AnnotationMode.MANUAL)


class TestKeys:
    def test_reduce_keys_in_reads(self):
        props = UdfProperties(emit_bounds=EmitBounds.exactly(1))
        op = ReduceOp("r", reduce_udf(identity_udf, props), FieldMap(AB), (0,))
        bound = op.bound_props(AnnotationMode.MANUAL)
        assert AB[0] in bound.reads
        assert op.key_attrs() == frozenset({AB[0]})

    def test_match_keys_in_reads(self):
        props = UdfProperties(emit_bounds=EmitBounds.exactly(1))
        op = MatchOp(
            "m", binary_udf(concat_udf, props), FieldMap(AB), FieldMap(CD), (0,), (1,)
        )
        bound = op.bound_props(AnnotationMode.MANUAL)
        assert AB[0] in bound.reads
        assert CD[1] in bound.reads
        assert op.left_key_attrs() == (AB[0],)
        assert op.right_key_attrs() == (CD[1],)
        assert op.side_key_attrs(0) == (AB[0],)
        assert op.side_key_attrs(1) == (CD[1],)


class TestSchemaPropagation:
    def test_output_attrs_add_new_remove_projected(self):
        props = UdfProperties(
            writes_modified=FieldSet.of(5),
            writes_projected=FieldSet.of(1),
            emit_bounds=EmitBounds.exactly(1),
        )
        op = MapOp("m", map_udf(identity_udf, props), FieldMap(AB))
        out = op.output_attrs_from(AnnotationMode.MANUAL, frozenset(AB))
        names = {a.name for a in out}
        assert names == {"i.a", "m.f5"}

    def test_binary_union(self):
        props = UdfProperties(emit_bounds=EmitBounds.exactly(1))
        op = MatchOp(
            "m", binary_udf(concat_udf, props), FieldMap(AB), FieldMap(CD), (0,), (0,)
        )
        out = op.output_attrs_from(
            AnnotationMode.MANUAL, frozenset(AB), frozenset(CD)
        )
        assert out == frozenset(AB) | frozenset(CD)
