"""Catalog metadata and Udf wrapper behavior."""

import pytest

from repro.core import (
    AnnotationMode,
    Catalog,
    EmitBounds,
    SchemaError,
    SourceStats,
    Udf,
    UdfError,
    UdfProperties,
    attrs,
    map_udf,
)
from repro.core.udf import ParamKind
from tests.conftest import paper_f2

A, B, C = attrs("t.a", "t.b", "u.c")


class TestCatalog:
    def make(self):
        catalog = Catalog()
        catalog.add_source("t", SourceStats(100, distinct={A: 10}, attr_bytes={A: 8.0}))
        return catalog

    def test_duplicate_source_rejected(self):
        catalog = self.make()
        with pytest.raises(SchemaError):
            catalog.add_source("t", SourceStats(1))

    def test_unknown_source(self):
        with pytest.raises(SchemaError):
            Catalog().stats("missing")

    def test_unique_keys_and_supersets(self):
        catalog = self.make()
        catalog.declare_unique(A)
        assert catalog.is_unique(frozenset({A}))
        assert catalog.is_unique(frozenset({A, B}))  # superset of a key
        assert not catalog.is_unique(frozenset({B}))

    def test_source_unique_keys_filtered_by_schema(self):
        catalog = self.make()
        catalog.declare_unique(A)
        catalog.declare_unique(C)
        assert catalog.source_unique_keys(frozenset({A, B})) == {frozenset({A})}

    def test_references(self):
        catalog = self.make()
        catalog.declare_reference((B,), (A,), total=True)
        ref = catalog.reference_between(frozenset({B}), frozenset({A}))
        assert ref is not None and ref.total
        assert catalog.reference_between(frozenset({A}), frozenset({B})) is None

    def test_stats_lookups(self):
        catalog = self.make()
        assert catalog.stats("t").row_count == 100
        assert catalog.distinct_of(A) == 10
        assert catalog.distinct_of(B) is None
        assert catalog.attr_width(A) == 8.0
        assert catalog.attr_width(B, default=4.0) == 4.0

    def test_empty_unique_key_rejected(self):
        with pytest.raises(SchemaError):
            Catalog().declare_unique()


class TestUdf:
    def test_arity(self):
        assert map_udf(paper_f2).arity == 1

    def test_manual_mode_needs_annotation(self):
        udf = map_udf(paper_f2)
        with pytest.raises(UdfError):
            udf.properties(AnnotationMode.MANUAL)

    def test_manual_annotation_returned(self):
        props = UdfProperties(emit_bounds=EmitBounds.exactly(1))
        udf = map_udf(paper_f2, props)
        assert udf.properties(AnnotationMode.MANUAL) is props

    def test_sca_mode_analyzes_and_caches(self):
        udf = map_udf(paper_f2)
        first = udf.properties(AnnotationMode.SCA)
        second = udf.properties(AnnotationMode.SCA)
        assert first is second
        assert first.origin == "sca"

    def test_sca_never_raises(self):
        def weird(rec, out):
            eval("1+1")  # unresolvable dynamic behavior
            out.emit(rec.copy())

        udf = Udf(weird, (ParamKind.RECORD,))
        props = udf.properties(AnnotationMode.SCA)
        assert props.is_conservative()

    def test_zero_params_rejected(self):
        with pytest.raises(UdfError):
            Udf(paper_f2, ())
