"""Record API semantics: copy / projection / concat / pass-through."""

import pytest

from repro.core import Collector, FieldMap, InputRecord, UdfError, attrs
from repro.core.record import OutputPositionResolver, record_bytes, value_bytes
from repro.core.schema import NewAttributeFactory


def make_resolver(*maps):
    return OutputPositionResolver(maps, NewAttributeFactory("op"))


class TestValueBytes:
    def test_primitives(self):
        assert value_bytes(None) == 1
        assert value_bytes(True) == 1
        assert value_bytes(7) == 8
        assert value_bytes(1.5) == 8
        assert value_bytes("abcd") == 8

    def test_containers(self):
        assert value_bytes((1, 2)) == 4 + 16
        assert value_bytes([1]) == 4 + 8

    def test_record_bytes_counts_headers(self):
        a, b = attrs("a", "b")
        assert record_bytes({a: 1, b: "xy"}) == (2 + 8) + (2 + 6)


class TestInputRecord:
    def setup_method(self):
        self.a, self.b = attrs("a", "b")
        self.fmap = FieldMap((self.a, self.b))
        self.resolver = make_resolver(self.fmap)

    def record(self, values):
        return InputRecord(values, self.fmap, self.resolver)

    def test_get_field(self):
        rec = self.record({self.a: 1, self.b: 2})
        assert rec.get_field(0) == 1
        assert rec.get_field(1) == 2

    def test_get_missing_attr_raises(self):
        rec = self.record({self.a: 1})
        with pytest.raises(UdfError):
            rec.get_field(1)

    def test_copy_is_full_copy(self):
        rec = self.record({self.a: 1, self.b: 2})
        out = rec.copy()
        assert out.raw() == {self.a: 1, self.b: 2}
        out.set_field(0, 9)
        assert rec.raw()[self.a] == 1  # original untouched

    def test_new_record_projects_positional_space_only(self):
        other = attrs("pass.through")[0]
        rec = self.record({self.a: 1, self.b: 2, other: 42})
        out = rec.new_record()
        # a/b are in the operator's positional space: dropped.
        # `other` is unknown to the operator: passes through.
        assert out.raw() == {other: 42}

    def test_set_field_new_position_creates_attribute(self):
        rec = self.record({self.a: 1, self.b: 2})
        out = rec.copy()
        out.set_field(5, "new")
        created = [a for a in out.raw() if a.name == "op.f5"]
        assert created and out.raw()[created[0]] == "new"

    def test_set_field_none_is_projection(self):
        rec = self.record({self.a: 1, self.b: 2})
        out = rec.copy()
        out.set_field(1, None)
        assert self.b not in out.raw()

    def test_output_get_field(self):
        rec = self.record({self.a: 1, self.b: 2})
        out = rec.copy()
        out.set_field(0, 5)
        assert out.get_field(0) == 5
        out.set_field(1, None)
        with pytest.raises(UdfError):
            out.get_field(1)


class TestConcat:
    def test_concat_merges_both_sides(self):
        a, b = attrs("l.a", "r.b")
        left_map, right_map = FieldMap((a,)), FieldMap((b,))
        resolver = make_resolver(left_map, right_map)
        left = InputRecord({a: 1}, left_map, resolver)
        right = InputRecord({b: 2}, right_map, resolver)
        out = left.concat(right)
        assert out.raw() == {a: 1, b: 2}

    def test_concat_positions_cover_both_inputs(self):
        a, b = attrs("l.a", "r.b")
        resolver = make_resolver(FieldMap((a,)), FieldMap((b,)))
        assert resolver.attr_for(0) == a
        assert resolver.attr_for(1) == b
        assert resolver.attr_for(2).name == "op.f2"

    def test_concat_rejects_non_record(self):
        a = attrs("a")[0]
        fmap = FieldMap((a,))
        resolver = make_resolver(fmap)
        rec = InputRecord({a: 1}, fmap, resolver)
        with pytest.raises(UdfError):
            rec.concat("nope")


class TestCollector:
    def test_emit_output_and_input_records(self):
        a = attrs("a")[0]
        fmap = FieldMap((a,))
        resolver = make_resolver(fmap)
        rec = InputRecord({a: 1}, fmap, resolver)
        collector = Collector()
        collector.emit(rec)
        collector.emit(rec.copy())
        assert collector.records() == [{a: 1}, {a: 1}]

    def test_emit_rejects_non_records(self):
        collector = Collector()
        with pytest.raises(UdfError):
            collector.emit({"not": "a record"})

    def test_emitted_records_are_independent(self):
        a = attrs("a")[0]
        fmap = FieldMap((a,))
        resolver = make_resolver(fmap)
        rec = InputRecord({a: 1}, fmap, resolver)
        out = rec.copy()
        collector = Collector()
        collector.emit(out)
        out.set_field(0, 99)
        assert collector.records()[0] == {a: 1}
