"""Attribute / FieldMap / NewAttributeFactory behavior."""

import pytest

from repro.core import Attribute, FieldMap, SchemaError, attrs, prefixed
from repro.core.schema import GlobalRecord, NewAttributeFactory


class TestAttribute:
    def test_equality_by_name(self):
        assert Attribute("x") == Attribute("x")
        assert Attribute("x") != Attribute("y")

    def test_hashable(self):
        assert len({Attribute("x"), Attribute("x"), Attribute("y")}) == 2

    def test_attrs_helper(self):
        a, b = attrs("a", "b")
        assert a.name == "a"
        assert b.name == "b"

    def test_prefixed_helper(self):
        a, b = prefixed("t", "x", "y")
        assert a.name == "t.x"
        assert b.name == "t.y"


class TestFieldMap:
    def test_positions(self):
        fm = FieldMap(attrs("a", "b", "c"))
        assert fm.attr_at(0).name == "a"
        assert fm.attr_at(2).name == "c"
        assert fm.position_of(Attribute("b")) == 1
        assert len(fm) == 3

    def test_out_of_range(self):
        fm = FieldMap(attrs("a"))
        with pytest.raises(SchemaError):
            fm.attr_at(1)
        with pytest.raises(SchemaError):
            fm.attr_at(-1)

    def test_unknown_attribute(self):
        fm = FieldMap(attrs("a"))
        with pytest.raises(SchemaError):
            fm.position_of(Attribute("zz"))

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            FieldMap(attrs("a", "a"))

    def test_as_set_and_iter(self):
        fm = FieldMap(attrs("a", "b"))
        assert fm.as_set() == frozenset(attrs("a", "b"))
        assert [a.name for a in fm] == ["a", "b"]


class TestNewAttributeFactory:
    def test_deterministic(self):
        factory = NewAttributeFactory("op1")
        first = factory.attr_for(5)
        second = factory.attr_for(5)
        assert first is second
        assert first.name == "op1.f5"

    def test_distinct_positions(self):
        factory = NewAttributeFactory("op1")
        assert factory.attr_for(5) != factory.attr_for(6)
        assert set(factory.created()) == {5, 6}


class TestGlobalRecord:
    def test_union_and_contains(self):
        a, b, c = attrs("a", "b", "c")
        gr = GlobalRecord(frozenset({a, b}))
        assert a in gr
        assert c not in gr
        grown = gr.union(frozenset({c}))
        assert c in grown
        assert len(grown) == 3
