"""Engine correctness: physical execution must match the oracle evaluator,
and the time model must behave sensibly."""

import pytest

from repro.core import (
    AnnotationMode,
    Catalog,
    FieldMap,
    MapOp,
    MatchOp,
    ReduceOp,
    Sink,
    Source,
    SourceStats,
    attrs,
    binary_udf,
    chain,
    datasets_equal,
    evaluate,
    map_udf,
    node,
    reduce_udf,
)
from repro.engine import Engine, execute_physical
from repro.optimizer import (
    CardinalityEstimator,
    CostParams,
    PlanContext,
    optimize_physical,
)
from tests.conftest import concat_udf, random_rows

L = attrs("l.k", "l.v")
S = attrs("s.k", "s.name")


def sum_reduce(records, out):
    total = 0
    for r in records:
        total = total + r.get_field(1)
    o = records[0].copy()
    o.set_field(1, total)
    out.emit(o)


def double_map(rec, out):
    r = rec.copy()
    r.set_field(1, rec.get_field(1) * 2)
    out.emit(r)


def build_env():
    catalog = Catalog()
    catalog.add_source("L", SourceStats(60, distinct={L[0]: 7}))
    catalog.add_source("S", SourceStats(7, distinct={S[0]: 7}))
    catalog.declare_unique(S[0])
    ctx = PlanContext(catalog, AnnotationMode.SCA)
    l_rows = random_rows(L, 60, seed=3, lo=0, hi=6)
    s_rows = [{S[0]: k, S[1]: f"n{k}"} for k in range(7)]
    return ctx, {"L": l_rows, "S": s_rows}


def physical_for(flow, ctx, degree=8):
    est = CardinalityEstimator(ctx)
    return optimize_physical(flow, ctx, est, CostParams(degree=degree))


class TestCorrectness:
    @pytest.mark.parametrize("degree", [1, 2, 7, 16])
    def test_map_reduce_chain_matches_oracle(self, degree):
        ctx, data = build_env()
        flow = chain(
            Source("L", L),
            MapOp("dbl", map_udf(double_map), FieldMap(L)),
            ReduceOp("sum", reduce_udf(sum_reduce), FieldMap(L), (0,)),
        )
        est = CardinalityEstimator(ctx)
        phys = optimize_physical(flow, ctx, est, CostParams(degree=degree))
        result = execute_physical(phys, data, CostParams(degree=degree))
        assert datasets_equal(result.records, evaluate(flow, data))

    def test_match_repartition_matches_oracle(self):
        ctx, data = build_env()
        flow = node(
            MatchOp("j", binary_udf(concat_udf), FieldMap(L), FieldMap(S), (0,), (0,)),
            node(Source("L", L)),
            node(Source("S", S)),
        )
        phys = physical_for(flow, ctx)
        result = execute_physical(phys, data, CostParams(degree=8))
        assert datasets_equal(result.records, evaluate(flow, data))

    def test_match_broadcast_matches_oracle(self):
        catalog = Catalog()
        catalog.add_source("L", SourceStats(100_000, distinct={L[0]: 7}))
        catalog.add_source("S", SourceStats(7, distinct={S[0]: 7}))
        ctx = PlanContext(catalog, AnnotationMode.SCA)
        _, data = build_env()
        flow = node(
            MatchOp("j", binary_udf(concat_udf), FieldMap(L), FieldMap(S), (0,), (0,)),
            node(Source("L", L)),
            node(Source("S", S)),
        )
        phys = physical_for(flow, ctx)
        from repro.optimizer import ShipKind

        assert any(s.kind is ShipKind.BROADCAST for s in phys.ships)
        result = execute_physical(phys, data, CostParams(degree=8))
        assert datasets_equal(result.records, evaluate(flow, data))

    def test_sink_plan_executes(self):
        ctx, data = build_env()
        flow = chain(Source("L", L), MapOp("dbl", map_udf(double_map), FieldMap(L)))
        plan = node(Sink("out"), flow)
        phys = physical_for(plan, ctx)
        result = execute_physical(phys, data, CostParams(degree=8))
        assert datasets_equal(result.records, evaluate(plan, data))


class TestTimeModel:
    def test_metrics_accumulate(self):
        ctx, data = build_env()
        flow = chain(
            Source("L", L),
            ReduceOp("sum", reduce_udf(sum_reduce), FieldMap(L), (0,)),
        )
        phys = physical_for(flow, ctx)
        result = execute_physical(phys, data, CostParams(degree=8))
        report = result.report
        assert result.seconds > 0
        assert report.udf_calls == 7  # one call per key group
        names = [m.name for m in report.per_op]
        assert "sum" in names and "L" in names
        reduce_metrics = next(m for m in report.per_op if m.name == "sum")
        assert reduce_metrics.net_bytes > 0  # repartition happened
        assert reduce_metrics.rows_in == 60

    def test_true_costs_scale_runtime(self):
        ctx, data = build_env()
        flow = chain(Source("L", L), MapOp("dbl", map_udf(double_map), FieldMap(L)))
        phys = physical_for(flow, ctx)
        cheap = Engine(CostParams(degree=8), {"dbl": 1.0}).execute(phys, data)
        pricey = Engine(CostParams(degree=8), {"dbl": 1000.0}).execute(phys, data)
        assert pricey.seconds > cheap.seconds
        assert datasets_equal(cheap.records, pricey.records)

    def test_minutes_label(self):
        from repro.engine.metrics import ExecutionReport, OpMetrics

        report = ExecutionReport(per_op=[OpMetrics(name="x", local_seconds=383.0)])
        assert report.minutes_label() == "6:23 min"

    def test_missing_source_data(self):
        ctx, _ = build_env()
        flow = chain(Source("L", L), MapOp("dbl", map_udf(double_map), FieldMap(L)))
        phys = physical_for(flow, ctx)
        from repro.core import ExecutionError

        with pytest.raises(ExecutionError):
            execute_physical(phys, {}, CostParams(degree=8))
