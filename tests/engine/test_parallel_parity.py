"""The partition-parallel execution backend must be bit-identical to
serial execution.

``Engine(engine_jobs=N)`` runs each pipeline stage's partitions across a
fork-based worker pool; workers ship back records and primitive counts,
and every float of metric arithmetic happens in the parent in partition
order.  These tests pin that, across all four paper workloads,
``engine_jobs`` in {1, 2, 4}, both cache modes, and staged execution
with observation collection, the records, per-op :class:`OpMetrics`, and
modeled seconds are *exactly* equal to the serial engine — plus the
worker-error protocol, the serial fallback on fork-less platforms, and
the breaker->ship scatter's equivalence to ``repartition_by_key``.
"""

import pytest

from repro.core import (
    AnnotationMode,
    Catalog,
    FieldMap,
    MapOp,
    ReduceOp,
    Source,
    SourceStats,
    attrs,
    chain,
    map_udf,
    reduce_udf,
)
from repro.core.errors import ExecutionError
from repro.datagen import ClickScale, CorpusScale, TpchScale
from repro.engine import Engine, repartition_by_key, round_robin
from repro.engine import parallel as engine_parallel
from repro.feedback import ObservationCollector
from repro.optimizer import (
    CardinalityEstimator,
    CostParams,
    Optimizer,
    PlanContext,
    optimize_physical,
)
from repro.workloads import (
    build_clickstream,
    build_q7,
    build_q15,
    build_textmining,
)

SMALL_TPCH = TpchScale(suppliers=40, customers=80, orders=400)

BUILDERS = {
    "tpch_q7": lambda: build_q7(SMALL_TPCH),
    "tpch_q15": lambda: build_q15(SMALL_TPCH),
    "clickstream": lambda: build_clickstream(ClickScale(sessions=250)),
    "textmining": lambda: build_textmining(CorpusScale(documents=250)),
}

JOBS = [1, 2, 4]


@pytest.fixture(scope="module")
def optimized():
    """workload name -> (workload, rank-picked plans), optimized once."""
    out = {}
    for name, build in BUILDERS.items():
        workload = build()
        result = Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
        ).optimize(workload.plan)
        out[name] = (workload, result.picks(3))
    return out


class TestParallelParity:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    @pytest.mark.parametrize("reuse", [False, True], ids=["fresh", "reuse"])
    def test_bit_identical_across_engine_jobs(self, optimized, name, reuse):
        workload, picks = optimized[name]
        engines = {
            jobs: Engine(
                workload.params,
                workload.true_costs,
                reuse_subtree_results=reuse,
                engine_jobs=jobs,
            )
            for jobs in JOBS
        }
        for plan in picks:
            want = engines[1].execute(plan.physical, workload.data)
            for jobs in JOBS[1:]:
                got = engines[jobs].execute(plan.physical, workload.data)
                assert got.records == want.records
                assert got.report.per_op == want.report.per_op  # exact OpMetrics
                assert got.seconds == want.seconds  # bit-identical, not approx

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_staged_execution_with_observation_collection(self, optimized, name):
        """execute_staged + ObservationCollector compose with the pool:
        records, metrics, modeled seconds, measured stage count, and the
        collected observations all match the serial staged run."""
        workload, picks = optimized[name]
        serial_collector = ObservationCollector()
        pooled_collector = ObservationCollector()
        serial = Engine(
            workload.params, workload.true_costs, collector=serial_collector
        )
        pooled = Engine(
            workload.params,
            workload.true_costs,
            collector=pooled_collector,
            engine_jobs=2,
        )
        plan = picks[0].physical
        want = serial.execute_staged(plan, workload.data)
        got = pooled.execute_staged(plan, workload.data)
        assert got.records == want.records
        assert got.report.per_op == want.report.per_op
        assert got.seconds == want.seconds
        assert serial_collector.executions and pooled_collector.executions
        for obs_got, obs_want in zip(
            pooled_collector.executions, serial_collector.executions
        ):
            # run ids are process-unique counters; everything observable
            # about the execution must match.
            assert obs_got.plan_key == obs_want.plan_key
            assert obs_got.seconds == obs_want.seconds
            assert obs_got.ops == obs_want.ops
            assert obs_got.partial == obs_want.partial
        # Wall-clock per stage is measured on both engines, one entry per
        # pipeline stage that ran.
        assert len(pooled.last_stage_walls) == len(serial.last_stage_walls)
        assert all(wall >= 0.0 for _, wall in pooled.last_stage_walls)

    def test_cache_replay_identical_under_pool(self, optimized):
        workload, picks = optimized["tpch_q15"]
        engine = Engine(
            workload.params,
            workload.true_costs,
            reuse_subtree_results=True,
            engine_jobs=2,
        )
        first = engine.execute(picks[0].physical, workload.data)
        assert engine._subtree_cache  # the run populated the cache
        second = engine.execute(picks[0].physical, workload.data)
        assert second.records == first.records
        assert second.report.per_op == first.report.per_op
        assert second.seconds == first.seconds


class TestScatterStreaming:
    def test_scatter_matches_repartition_by_key(self):
        """The worker-side hash-scatter plus origin-order assembly must
        reproduce ``repartition_by_key`` exactly: same target partitions,
        same row order, same moved count."""
        key = attrs("s.k")
        rows = [{key[0]: i % 13} for i in range(997)]
        degree = 8
        parts = round_robin(rows, degree)
        want, want_moved = repartition_by_key(parts, key, degree)
        spec = (key, degree)
        packed = [
            engine_parallel.scatter_partition(p, origin, spec)
            for origin, p in enumerate(parts)
        ]
        scattered = engine_parallel.assemble(packed, spec)
        assert scattered.parts == want
        assert scattered.moved == want_moved
        assert scattered.rows == len(rows)
        assert len(scattered.pre_bytes) == degree

    def test_scatter_fires_inside_parallel_regions(self, optimized, monkeypatch):
        """A hash-partition-shipped producer inside a parallel region
        must stream through the scatter, not buffer-then-repartition."""
        workload, picks = optimized["tpch_q15"]
        fired = []
        original = engine_parallel.assemble

        def spy(packed, scatter):
            if scatter is not None:
                fired.append(scatter)
            return original(packed, scatter)

        monkeypatch.setattr(engine_parallel, "assemble", spy)
        engine = Engine(workload.params, workload.true_costs, engine_jobs=2)
        engine.execute(picks[0].physical, workload.data)
        assert fired


def _tiny_flow(udf, degree=4, reduce_key=None):
    """One source plus one UDF operator, optimized at small degree."""
    fields = attrs("t.k", "t.v")
    catalog = Catalog()
    catalog.add_source("T", SourceStats(row_count=24))
    ctx = PlanContext(catalog, AnnotationMode.SCA)
    if reduce_key is None:
        op = MapOp("annotate", map_udf(udf), FieldMap(fields))
    else:
        op = ReduceOp("fold", reduce_udf(udf), FieldMap(fields), reduce_key)
    flow = chain(Source("T", fields), op)
    params = CostParams(degree=degree)
    phys = optimize_physical(flow, ctx, CardinalityEstimator(ctx), params)
    data = {"T": [{fields[0]: i, fields[1]: i * 10} for i in range(24)]}
    return phys, data, params


class TestWorkerErrors:
    def test_chain_udf_error_names_operator_and_partition(self):
        def explode(rec, out):
            if rec.get_field(0) == 7:
                raise ValueError("bad tuple 7")
            out.emit(rec.copy())

        phys, data, params = _tiny_flow(explode)
        engine = Engine(params, engine_jobs=2)
        with pytest.raises(ExecutionError) as err:
            engine.execute(phys, data)
        message = str(err.value)
        assert "'annotate'" in message
        assert "partition 3" in message  # 7 % degree=4 under round robin
        assert "bad tuple 7" in message

    def test_local_strategy_udf_error_names_operator_and_partition(self):
        def explode(records, out):
            if records[0].get_field(0) % 4 == 1:
                raise RuntimeError("reduce group blew up")
            out.emit(records[0].copy())

        phys, data, params = _tiny_flow(explode, reduce_key=(0,))
        engine = Engine(params, engine_jobs=2)
        with pytest.raises(ExecutionError) as err:
            engine.execute(phys, data)
        message = str(err.value)
        assert "'fold'" in message
        assert "partition" in message
        assert "reduce group blew up" in message

    def test_serial_engine_raises_the_same_error_class(self):
        def explode(rec, out):
            raise ValueError("always")

        phys, data, params = _tiny_flow(explode)
        with pytest.raises(ExecutionError):
            Engine(params, engine_jobs=2).execute(phys, data)
        # Serial path: no marshalling, the UDF error propagates natively.
        with pytest.raises(Exception):
            Engine(params).execute(phys, data)


class TestEngineJobsValidation:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, "4"])
    def test_rejects_non_positive_or_non_integer_jobs(self, bad):
        with pytest.raises(ExecutionError, match="engine_jobs"):
            Engine(engine_jobs=bad)

    def test_serial_fallback_warns_without_fork(self, monkeypatch):
        monkeypatch.setattr(engine_parallel, "available", lambda: False)

        def ident(rec, out):
            out.emit(rec.copy())

        phys, data, params = _tiny_flow(ident)
        with pytest.warns(RuntimeWarning, match="fork"):
            engine = Engine(params, engine_jobs=4)
        assert engine.engine_jobs == 1  # fell back, did not crash
        result = engine.execute(phys, data)
        assert len(result.records) == 24

    def test_jobs_one_never_forks(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("engine_jobs=1 must not enter the pool")

        monkeypatch.setattr(engine_parallel, "_run_region", boom)

        def ident(rec, out):
            out.emit(rec.copy())

        phys, data, params = _tiny_flow(ident)
        result = Engine(params).execute(phys, data)
        assert len(result.records) == 24


class TestHarnessWiring:
    def test_run_experiment_engine_jobs_matches_serial(self, optimized):
        from repro.bench import run_experiment

        workload, _ = optimized["textmining"]
        serial = run_experiment(workload, picks=2)
        pooled = run_experiment(workload, picks=2, engine_jobs=2)
        assert [p.runtime_seconds for p in serial.executed] == [
            p.runtime_seconds for p in pooled.executed
        ]
        assert [p.result.records for p in serial.executed] == [
            p.result.records for p in pooled.executed
        ]

    def test_execute_plan_engine_jobs_matches_serial(self, optimized):
        from repro.bench.harness import execute_plan

        workload, picks = optimized["clickstream"]
        want = execute_plan(workload, picks[0])
        got = execute_plan(workload, picks[0], engine_jobs=2)
        assert got.records == want.records
        assert got.seconds == want.seconds

    def test_cli_rejects_zero_engine_jobs(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "textmining", "--engine-jobs", "0"]
            )
        assert "must be an integer >= 1" in capsys.readouterr().err
