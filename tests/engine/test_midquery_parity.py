"""Staged execution must be bit-identical to the plain engine.

The mid-query stage loop (``Engine.execute_staged``) runs a plan one
pipeline stage at a time with checkpointed intermediate handoff.  These
tests pin the tentpole's correctness bar across all four paper
workloads: with re-optimization off (no controller) or forced off
(``switch_threshold=inf``) records, per-operator metrics, and simulated
seconds are *exactly* equal to ``Engine.execute``; and when switches are
forced at every boundary (``switch_threshold=0``), the hybrid execution
still produces the same result set.
"""

import math

import pytest

from repro.core import AnnotationMode, datasets_equal
from repro.core.errors import ExecutionError
from repro.datagen import ClickScale, CorpusScale, TpchScale
from repro.engine import Engine
from repro.feedback import MidQueryReoptimizer, StatisticsStore
from repro.optimizer import Optimizer
from repro.workloads import (
    build_clickstream,
    build_q7,
    build_q15,
    build_textmining,
)

SMALL_TPCH = TpchScale(suppliers=40, customers=80, orders=400)

BUILDERS = {
    "tpch_q7": lambda: build_q7(SMALL_TPCH),
    "tpch_q15": lambda: build_q15(SMALL_TPCH),
    "clickstream": lambda: build_clickstream(ClickScale(sessions=250)),
    "textmining": lambda: build_textmining(CorpusScale(documents=250)),
}


@pytest.fixture(scope="module")
def optimized():
    """workload name -> (workload, rank-picked plans), optimized once."""
    out = {}
    for name, build in BUILDERS.items():
        workload = build()
        result = Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
        ).optimize(workload.plan)
        out[name] = (workload, result.picks(3))
    return out


def controller_for(workload, threshold):
    return MidQueryReoptimizer(
        workload.catalog,
        workload.hints,
        AnnotationMode.SCA,
        workload.params,
        store=StatisticsStore(),
        switch_threshold=threshold,
    )


class TestStagedParity:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_staged_bit_identical_without_controller(self, optimized, name):
        workload, picks = optimized[name]
        for plan in picks:
            plain = Engine(workload.params, workload.true_costs)
            staged = Engine(workload.params, workload.true_costs)
            want = plain.execute(plan.physical, workload.data)
            got = staged.execute_staged(plan.physical, workload.data)
            assert got.records == want.records
            assert got.report.per_op == want.report.per_op  # exact OpMetrics
            assert got.seconds == want.seconds  # bit-identical, not approx

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_threshold_inf_never_switches_and_stays_identical(
        self, optimized, name
    ):
        """Re-optimization runs at every boundary but never abandons the
        plan: the execution must remain bit-identical to the plain engine."""
        workload, picks = optimized[name]
        plan = picks[0]
        controller = controller_for(workload, math.inf)
        plain = Engine(workload.params, workload.true_costs)
        staged = Engine(workload.params, workload.true_costs)
        want = plain.execute(plan.physical, workload.data)
        got = staged.execute_staged(plan.physical, workload.data, controller)
        assert got.records == want.records
        assert got.report.per_op == want.report.per_op
        assert got.seconds == want.seconds
        assert all(not d.switched for d in controller.decisions)
        # Re-planning really happened: multi-stage plans have boundaries,
        # and the best re-planned suffix never prices above the kept one.
        if len(plan.physical.pipeline_stages()) > 1:
            assert controller.decisions
        for d in controller.decisions:
            assert d.best_cost <= d.current_cost

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_forced_switches_preserve_the_result_set(self, optimized, name):
        """``switch_threshold=0`` abandons the running plan at every
        boundary; the hybrid of checkpointed prefixes and re-planned
        suffixes must still compute the same records."""
        workload, picks = optimized[name]
        plan = picks[0]
        controller = controller_for(workload, 0.0)
        plain = Engine(workload.params, workload.true_costs)
        staged = Engine(workload.params, workload.true_costs)
        want = plain.execute(plan.physical, workload.data)
        got = staged.execute_staged(plan.physical, workload.data, controller)
        assert datasets_equal(got.records, want.records)
        if len(plan.physical.pipeline_stages()) > 1:
            assert any(d.switched for d in controller.decisions)

    def test_staged_requires_the_streaming_engine(self, optimized):
        workload, picks = optimized["clickstream"]
        engine = Engine(workload.params, workload.true_costs, streaming=False)
        with pytest.raises(ExecutionError, match="streaming"):
            engine.execute_staged(picks[0].physical, workload.data)

    def test_single_stage_plans_have_no_boundaries(self, optimized):
        """Text mining fuses into one stage: nothing to re-optimize."""
        workload, picks = optimized["textmining"]
        plan = picks[0]
        assert len(plan.physical.pipeline_stages()) == 1
        controller = controller_for(workload, 0.0)
        engine = Engine(workload.params, workload.true_costs)
        engine.execute_staged(plan.physical, workload.data, controller)
        assert controller.decisions == []
