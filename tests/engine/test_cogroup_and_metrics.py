"""Engine coverage: CoGroup execution, metric bookkeeping, reporting."""

from repro.core import (
    AnnotationMode,
    Catalog,
    CoGroupOp,
    FieldMap,
    Source,
    SourceStats,
    attrs,
    cogroup_udf,
    evaluate,
    projected_equal,
    node,
)
from repro.engine import execute_physical
from repro.engine.metrics import ExecutionReport, OpMetrics
from repro.optimizer import (
    CardinalityEstimator,
    CostParams,
    LocalStrategy,
    PlanContext,
    ShipKind,
    optimize_physical,
)
from tests.conftest import random_rows

L = attrs("l.k", "l.v")
S = attrs("s.k", "s.w")


def delta_groups(left_recs, right_recs, out):
    if left_recs:
        o = left_recs[0].copy()
    else:
        o = right_recs[0].copy()
    o.set_field(4, len(left_recs) - len(right_recs))
    out.emit(o)


def build_cogroup_flow():
    cg = CoGroupOp(
        "cg", cogroup_udf(delta_groups), FieldMap(L), FieldMap(S), (0,), (0,)
    )
    return node(cg, node(Source("L", L)), node(Source("S", S)))


class TestCoGroupExecution:
    def test_matches_oracle_across_degrees(self):
        catalog = Catalog()
        catalog.add_source("L", SourceStats(40, distinct={L[0]: 5}))
        catalog.add_source("S", SourceStats(30, distinct={S[0]: 5}))
        ctx = PlanContext(catalog, AnnotationMode.SCA)
        flow = build_cogroup_flow()
        delta = flow.op.new_attr_factory.attr_for(4)
        data = {
            "L": random_rows(L, 40, seed=11, lo=0, hi=4),
            "S": random_rows(S, 30, seed=12, lo=0, hi=6),
        }
        baseline = evaluate(flow, data)
        # The UDF copies records[0] of an *unordered* group: the copied
        # non-key values depend on group order, which bag semantics leave
        # open.  Compare the deterministic attributes (keys + delta).
        deterministic = (L[0], S[0], delta)
        for degree in (1, 3, 8):
            params = CostParams(degree=degree)
            est = CardinalityEstimator(ctx)
            phys = optimize_physical(flow, ctx, est, params)
            assert phys.local is LocalStrategy.SORT_COGROUP
            assert all(s.kind is ShipKind.PARTITION for s in phys.ships)
            result = execute_physical(phys, data, params)
            assert projected_equal(result.records, baseline, deterministic)

    def test_udf_called_once_per_key(self):
        catalog = Catalog()
        catalog.add_source("L", SourceStats(40, distinct={L[0]: 5}))
        catalog.add_source("S", SourceStats(30, distinct={S[0]: 5}))
        ctx = PlanContext(catalog, AnnotationMode.SCA)
        flow = build_cogroup_flow()
        data = {
            "L": [{L[0]: k, L[1]: 0} for k in (0, 0, 1)],
            "S": [{S[0]: k, S[1]: 0} for k in (1, 2)],
        }
        est = CardinalityEstimator(ctx)
        params = CostParams(degree=4)
        phys = optimize_physical(flow, ctx, est, params)
        result = execute_physical(phys, data, params)
        cg_metrics = next(m for m in result.report.per_op if m.name == "cg")
        assert cg_metrics.udf_calls == 3  # keys 0, 1, 2


class TestReporting:
    def test_report_aggregates(self):
        report = ExecutionReport(
            per_op=[
                OpMetrics(name="a", net_bytes=10.0, disk_bytes=5.0,
                          udf_calls=3, local_seconds=1.0, ship_seconds=0.5),
                OpMetrics(name="b", net_bytes=20.0, udf_calls=4, local_seconds=2.0),
            ]
        )
        assert report.seconds == 3.5
        assert report.net_bytes == 30.0
        assert report.disk_bytes == 5.0
        assert report.udf_calls == 7

    def test_minutes_label_rounding(self):
        report = ExecutionReport(per_op=[OpMetrics(name="x", local_seconds=59.6)])
        assert report.minutes_label() == "1:00 min"

    def test_describe_lists_operators(self):
        report = ExecutionReport(
            per_op=[OpMetrics(name="alpha", strategy="scan", rows_out=7)]
        )
        text = report.describe()
        assert "alpha" in text and "scan" in text
