"""Partitioning primitives: determinism, co-location, conservation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import attrs
from repro.engine import broadcast, gather, repartition_by_key, round_robin, stable_hash
from repro.engine.partition import hash_key

A, B = attrs("a", "b")


class TestStableHash:
    def test_deterministic_across_types(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(17) == stable_hash(17)
        assert stable_hash((1, "x")) == stable_hash((1, "x"))
        assert stable_hash(None) == stable_hash(None)
        assert stable_hash(1.5) == stable_hash(1.5)

    def test_bool_not_confused_with_int(self):
        assert stable_hash(True) != stable_hash(1)

    @given(st.lists(st.integers(), min_size=2, max_size=2, unique=True))
    def test_spreads_values(self, pair):
        # not a strict requirement for all pairs, but the multiplier must
        # not collapse small distinct ints
        a, b = pair
        if abs(a - b) < 1000:
            assert stable_hash(a) != stable_hash(b)


class TestRoundRobin:
    @given(st.integers(0, 50), st.integers(1, 8))
    def test_conservation_and_balance(self, n, degree):
        rows = [{A: i} for i in range(n)]
        parts = round_robin(rows, degree)
        assert len(parts) == degree
        assert sorted(r[A] for r in gather(parts)) == list(range(n))
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1


class TestRepartition:
    @given(st.lists(st.integers(0, 5), max_size=40), st.integers(1, 8))
    def test_key_groups_colocated(self, keys, degree):
        rows = [{A: k, B: i} for i, k in enumerate(keys)]
        parts, moved = repartition_by_key(round_robin(rows, degree), (A,), degree)
        assert 0 <= moved <= len(rows)
        # conservation
        assert sorted(r[B] for r in gather(parts)) == sorted(r[B] for r in rows)
        # co-location: every key appears in exactly one partition
        for key in set(keys):
            holders = [i for i, p in enumerate(parts) if any(r[A] == key for r in p)]
            assert len(holders) <= 1

    def test_placement_matches_hash(self):
        rows = [{A: 7}]
        parts, _ = repartition_by_key([rows, [], []], (A,), 3)
        expected = hash_key(rows[0], (A,)) % 3
        assert parts[expected] == rows


class TestBroadcast:
    @given(st.integers(0, 20), st.integers(1, 6))
    def test_every_instance_gets_everything(self, n, degree):
        rows = [{A: i} for i in range(n)]
        parts, moved = broadcast(round_robin(rows, degree), degree)
        assert moved == n * (degree - 1)
        for p in parts:
            assert sorted(r[A] for r in p) == list(range(n))
