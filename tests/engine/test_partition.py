"""Partitioning primitives: determinism, co-location, conservation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ExecutionError, attrs
from repro.engine import broadcast, gather, repartition_by_key, round_robin, stable_hash
from repro.engine.partition import hash_key

A, B = attrs("a", "b")

# Values that collide as dict keys across types; group-by and join
# semantics key on dict equality, so the partitioner must co-locate them.
MIXED_KEYS = [0, 1, 2, -1, True, False, 0.0, -0.0, 1.0, 2.0, -1.0,
              2**40, float(2**40), 2.5, "1", "a", None]


class TestStableHash:
    def test_deterministic_across_types(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(17) == stable_hash(17)
        assert stable_hash((1, "x")) == stable_hash((1, "x"))
        assert stable_hash(None) == stable_hash(None)
        assert stable_hash(1.5) == stable_hash(1.5)

    def test_equal_dict_keys_hash_equal(self):
        """``True == 1 == 1.0`` as dict keys, so all three must hash the
        same — otherwise a hash repartition splits an equal-key group."""
        assert stable_hash(True) == stable_hash(1) == stable_hash(1.0)
        assert stable_hash(False) == stable_hash(0) == stable_hash(0.0)
        assert stable_hash(0) == stable_hash(-0.0)
        assert stable_hash(2**40) == stable_hash(float(2**40))
        assert stable_hash((True, 2.0)) == stable_hash((1, 2))

    @given(st.sampled_from(MIXED_KEYS), st.sampled_from(MIXED_KEYS))
    def test_hash_respects_key_equality(self, a, b):
        if a == b:
            assert stable_hash(a) == stable_hash(b)

    def test_non_integer_floats_keep_distinct_path(self):
        assert stable_hash(2.5) == stable_hash(2.5)
        assert stable_hash(float("inf")) == stable_hash(float("inf"))

    @given(st.lists(st.integers(), min_size=2, max_size=2, unique=True))
    def test_spreads_values(self, pair):
        # not a strict requirement for all pairs, but the multiplier must
        # not collapse small distinct ints
        a, b = pair
        if abs(a - b) < 1000:
            assert stable_hash(a) != stable_hash(b)


class TestHashKey:
    def test_missing_key_attribute_raises_execution_error(self):
        with pytest.raises(ExecutionError, match="missing from record at runtime"):
            hash_key({A: 1}, (B,))

    def test_repartition_propagates_missing_key_error(self):
        with pytest.raises(ExecutionError, match="missing from record at runtime"):
            repartition_by_key([[{A: 1}]], (B,), 4)


class TestRoundRobin:
    @given(st.integers(0, 50), st.integers(1, 8))
    def test_conservation_and_balance(self, n, degree):
        rows = [{A: i} for i in range(n)]
        parts = round_robin(rows, degree)
        assert len(parts) == degree
        assert sorted(r[A] for r in gather(parts)) == list(range(n))
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1


class TestRepartition:
    @given(st.lists(st.integers(0, 5), max_size=40), st.integers(1, 8))
    def test_key_groups_colocated(self, keys, degree):
        rows = [{A: k, B: i} for i, k in enumerate(keys)]
        parts, moved = repartition_by_key(round_robin(rows, degree), (A,), degree)
        assert 0 <= moved <= len(rows)
        # conservation
        assert sorted(r[B] for r in gather(parts)) == sorted(r[B] for r in rows)
        # co-location: every key appears in exactly one partition
        for key in set(keys):
            holders = [i for i, p in enumerate(parts) if any(r[A] == key for r in p)]
            assert len(holders) <= 1

    @given(st.lists(st.sampled_from(MIXED_KEYS), max_size=40), st.integers(1, 8))
    def test_mixed_type_key_groups_colocated(self, keys, degree):
        """Cross-type equal keys (1 / 1.0 / True) must land on one instance."""
        rows = [{A: k, B: i} for i, k in enumerate(keys)]
        parts, _ = repartition_by_key(round_robin(rows, degree), (A,), degree)
        assert sorted(r[B] for r in gather(parts)) == sorted(r[B] for r in rows)
        for key in {k for k in keys}:
            holders = [i for i, p in enumerate(parts) if any(r[A] == key for r in p)]
            assert len(holders) <= 1

    def test_placement_matches_hash(self):
        rows = [{A: 7}]
        parts, _ = repartition_by_key([rows, [], []], (A,), 3)
        expected = hash_key(rows[0], (A,)) % 3
        assert parts[expected] == rows


class TestBroadcast:
    @given(st.integers(0, 20), st.integers(1, 6))
    def test_every_instance_gets_everything(self, n, degree):
        rows = [{A: i} for i in range(n)]
        parts, moved = broadcast(round_robin(rows, degree), degree)
        assert moved == n * (degree - 1)
        for p in parts:
            assert sorted(r[A] for r in p) == list(range(n))
