"""The streaming pipelined engine must be bit-identical to the seed
materializing engine.

The streaming path fuses forward-shipped Map chains (and the Sink) into
per-partition batched pipelines and caches subtree results at pipeline
breaker boundaries.  These tests pin that, across all four paper
workloads and rank-picked plans, records, per-operator metrics, and
simulated seconds are *exactly* equal to the materializing reference —
with and without ``reuse_subtree_results`` — and that the mixed-type-key
partitioning fix keeps the parallel engine on the reference oracle.
"""

import pytest

from repro.core import (
    AnnotationMode,
    Catalog,
    FieldMap,
    ReduceOp,
    Source,
    SourceStats,
    attrs,
    chain,
    datasets_equal,
    evaluate,
    reduce_udf,
)
from repro.datagen import ClickScale, CorpusScale, TpchScale
from repro.engine import Engine
from repro.feedback import ObservationCollector
from repro.optimizer import (
    CardinalityEstimator,
    CostParams,
    Optimizer,
    PlanContext,
    optimize_physical,
)
from repro.optimizer.physical import PhysNode, pipelineable
from repro.workloads import (
    build_clickstream,
    build_q7,
    build_q15,
    build_textmining,
)

SMALL_TPCH = TpchScale(suppliers=40, customers=80, orders=400)

BUILDERS = {
    "tpch_q7": lambda: build_q7(SMALL_TPCH),
    "tpch_q15": lambda: build_q15(SMALL_TPCH),
    "clickstream": lambda: build_clickstream(ClickScale(sessions=250)),
    "textmining": lambda: build_textmining(CorpusScale(documents=250)),
}


@pytest.fixture(scope="module")
def optimized():
    """workload name -> (workload, rank-picked plans), optimized once."""
    out = {}
    for name, build in BUILDERS.items():
        workload = build()
        result = Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
        ).optimize(workload.plan)
        out[name] = (workload, result.picks(5))
    return out


class TestStreamingParity:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    @pytest.mark.parametrize("reuse", [False, True], ids=["fresh", "reuse"])
    def test_bit_identical_to_materializing_engine(self, optimized, name, reuse):
        workload, picks = optimized[name]
        streaming = Engine(
            workload.params, workload.true_costs, reuse_subtree_results=reuse
        )
        materializing = Engine(
            workload.params,
            workload.true_costs,
            reuse_subtree_results=reuse,
            streaming=False,
        )
        for plan in picks:
            got = streaming.execute(plan.physical, workload.data)
            want = materializing.execute(plan.physical, workload.data)
            assert got.records == want.records
            assert got.report.per_op == want.report.per_op  # exact OpMetrics
            assert got.seconds == want.seconds  # bit-identical, not approx

    @pytest.mark.parametrize("batch", [1, 7, 100_000])
    def test_batch_size_does_not_change_results(self, optimized, batch):
        workload, picks = optimized["textmining"]
        reference = Engine(workload.params, workload.true_costs, streaming=False)
        batched = Engine(workload.params, workload.true_costs, stream_batch_rows=batch)
        got = batched.execute(picks[0].physical, workload.data)
        want = reference.execute(picks[0].physical, workload.data)
        assert got.records == want.records
        assert got.report.per_op == want.report.per_op


class TestObservationParity:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_collected_observations_bit_identical_across_engine_modes(
        self, optimized, name
    ):
        """The feedback subsystem's per-op observations — rows-in,
        rows-out, UDF calls, everything — must not depend on whether the
        engine streamed or materialized."""
        workload, picks = optimized[name]
        streaming_collector = ObservationCollector()
        materializing_collector = ObservationCollector()
        streaming = Engine(
            workload.params, workload.true_costs, collector=streaming_collector
        )
        materializing = Engine(
            workload.params,
            workload.true_costs,
            streaming=False,
            collector=materializing_collector,
        )
        for plan in picks:
            streaming.execute(plan.physical, workload.data)
            materializing.execute(plan.physical, workload.data)
        assert streaming_collector.executions  # the hook actually fired
        assert streaming_collector.executions == materializing_collector.executions
        # Field-level check for the headline quantities, exact equality.
        for got, want in zip(
            streaming_collector.executions, materializing_collector.executions
        ):
            assert got.plan_key == want.plan_key
            assert got.seconds == want.seconds
            for op_got, op_want in zip(got.ops, want.ops):
                assert (op_got.key, op_got.rows_in, op_got.rows_out) == (
                    op_want.key,
                    op_want.rows_in,
                    op_want.rows_out,
                )
                assert op_got.udf_calls == op_want.udf_calls


class TestBreakerBoundaryCache:
    def test_cache_hits_replay_identical_metrics(self, optimized):
        workload, picks = optimized["tpch_q15"]
        engine = Engine(
            workload.params, workload.true_costs, reuse_subtree_results=True
        )
        first = engine.execute(picks[0].physical, workload.data)
        assert engine._subtree_cache  # the run populated the cache
        second = engine.execute(picks[0].physical, workload.data)
        assert second.records == first.records
        assert second.report.per_op == first.report.per_op
        assert second.seconds == first.seconds

    def test_cache_keys_only_stage_boundaries(self, optimized):
        """Streaming caches per pipeline stage, not per plan node."""
        workload, picks = optimized["textmining"]
        engine = Engine(
            workload.params, workload.true_costs, reuse_subtree_results=True
        )
        plan = picks[0].physical
        engine.execute(plan, workload.data)
        nodes = 0
        stack = [plan]
        while stack:
            node = stack.pop()
            nodes += 1
            stack.extend(node.children)
        # The whole text-mining plan is one fused stage (source + Map
        # chain + sink): the cache holds the root entry plus the stage's
        # breaker entry, far fewer than the per-node seed cache.
        assert len(engine._subtree_cache) == len(plan.pipeline_stages()) + 1
        assert len(engine._subtree_cache) < nodes

    def test_physnode_hashes_by_identity(self):
        assert PhysNode.__hash__ is object.__hash__
        # Structurally equal plans built by two fresh optimizers are
        # distinct objects and distinct cache keys: equality no longer
        # recurses over the whole subtree.
        fields = attrs("p.k", "p.v")
        catalog = Catalog()
        catalog.add_source("P", SourceStats(row_count=10))
        ctx = PlanContext(catalog, AnnotationMode.SCA)
        flow = chain(Source("P", fields))
        first = optimize_physical(flow, ctx, CardinalityEstimator(ctx), CostParams())
        second = optimize_physical(flow, ctx, CardinalityEstimator(ctx), CostParams())
        assert first.describe() == second.describe()
        assert first is not second
        assert first != second


class TestPipelineStages:
    def test_textmining_is_one_fused_stage(self, optimized):
        _, picks = optimized["textmining"]
        stages = picks[0].physical.pipeline_stages()
        assert len(stages) == 1
        (stage,) = stages
        # breaker first (the scan), then the whole fused annotator chain
        # (the optimizer plans the body, so no Sink node appears here)
        assert stage[0].name == "documents"
        assert stage[1].name == "tokenize"
        assert len(stage) == 8  # source + 7 annotators, one streaming pass

    def test_every_node_in_exactly_one_stage(self, optimized):
        for name in sorted(BUILDERS):
            _, picks = optimized[name]
            for plan in picks:
                stages = plan.physical.pipeline_stages()
                seen = [node for stage in stages for node in stage]
                assert len(seen) == len(set(map(id, seen)))
                stack, nodes = [plan.physical], []
                while stack:
                    node = stack.pop()
                    nodes.append(node)
                    stack.extend(node.children)
                assert set(map(id, seen)) == set(map(id, nodes))
                for stage in stages:
                    assert not pipelineable(stage[0])  # a breaker leads
                    for fused in stage[1:]:
                        assert pipelineable(fused)


class TestMixedTypeKeyParity:
    def test_engine_matches_reference_on_mixed_type_keys(self):
        """``1``/``1.0``/``True`` are one group under dict-key semantics;
        the repartitioned parallel engine must agree with the oracle."""
        K = attrs("m.k", "m.v")

        def sum_group(records, out):
            total = 0
            for r in records:
                total = total + r.get_field(1)
            o = records[0].copy()
            o.set_field(1, total)
            out.emit(o)

        keys = [1, 1.0, True, 2, 2.0, 0, False, 0.0, "1", 3, float(2**40), 2**40]
        rows = [{K[0]: k, K[1]: i + 1} for i, k in enumerate(keys * 5)]
        data = {"M": rows}
        catalog = Catalog()
        catalog.add_source("M", SourceStats(row_count=len(rows)))
        ctx = PlanContext(catalog, AnnotationMode.SCA)
        flow = chain(
            Source("M", K),
            ReduceOp("sum", reduce_udf(sum_group), FieldMap(K), (0,)),
        )
        phys = optimize_physical(
            flow, ctx, CardinalityEstimator(ctx), CostParams(degree=8)
        )
        baseline = evaluate(flow, data)
        # dict-key semantics collapse 1/1.0/True (and friends) per group
        distinct_groups = {}
        for k in keys:
            distinct_groups[k] = True
        assert len(baseline) == len(distinct_groups)
        for streaming in (True, False):
            engine = Engine(CostParams(degree=8), streaming=streaming)
            result = engine.execute(phys, data)
            assert datasets_equal(result.records, baseline)
            assert len(result.records) == len(distinct_groups)
