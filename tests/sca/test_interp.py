"""TAC interpreter: TAC UDFs are executable against the record API."""

import pytest

from repro.core import Collector, ExecutionError, FieldMap, InputRecord, attrs
from repro.core.record import OutputPositionResolver
from repro.core.schema import NewAttributeFactory
from repro.sca import execute_tac_udf, parse_tac

A, B = attrs("a", "b")
FMAP = FieldMap((A, B))
RESOLVER = OutputPositionResolver((FMAP,), NewAttributeFactory("op"))


def run(fn_text, values, env=None):
    fn = parse_tac(fn_text, env)
    collector = Collector()
    rec = InputRecord(values, FMAP, RESOLVER)
    execute_tac_udf(fn, (rec,), collector)
    return collector.records()


def test_paper_f1_abs():
    text = """
    f1(InputRecord $ir):
        $b := getField($ir, 1)
        $or := copy($ir)
        if $b >= 0 goto L1
        $nb := -$b
        setField($or, 1, $nb)
    L1:
        emit($or)
        return
    """
    assert run(text, {A: 2, B: -3}) == [{A: 2, B: 3}]
    assert run(text, {A: 2, B: 3}) == [{A: 2, B: 3}]


def test_filter_drops():
    text = """
    f2(InputRecord $ir):
        $a := getField($ir, 0)
        if $a < 0 goto L1
        $or := copy($ir)
        emit($or)
    L1:
        return
    """
    assert run(text, {A: -2, B: 0}) == []
    assert run(text, {A: 2, B: 0}) == [{A: 2, B: 0}]


def test_loop_over_group():
    text = """
    total(InputRecord $recs):
        $sum := 0
        $it := iter($recs)
    L0:
        $r := next($it) else LD
        $v := getField($r, 1)
        $sum := $sum + $v
        goto L0
    LD:
        $first := getitem($recs, 0)
        $o := copy($first)
        setField($o, 1, $sum)
        emit($o)
        return
    """
    fn = parse_tac(text)
    collector = Collector()
    group = [InputRecord({A: 1, B: v}, FMAP, RESOLVER) for v in (3, 4, 5)]
    execute_tac_udf(fn, (group,), collector)
    assert collector.records() == [{A: 1, B: 12}]


def test_opaque_call_env():
    text = """
    f($ir):
        $v := getField($ir, 0)
        $w := call double($v)
        $o := copy($ir)
        setField($o, 0, $w)
        emit($o)
        return
    """
    out = run(text, {A: 21, B: 0}, env={"double": lambda x: x * 2})
    assert out == [{A: 42, B: 0}]


def test_builtin_whitelist():
    text = """
    f($ir):
        $v := getField($ir, 0)
        $w := call abs($v)
        $o := copy($ir)
        setField($o, 0, $w)
        emit($o)
        return
    """
    assert run(text, {A: -5, B: 0}) == [{A: 5, B: 0}]


def test_unknown_call_rejected():
    text = """
    f($ir):
        $w := call nonexistent(1)
        return
    """
    with pytest.raises(ExecutionError):
        run(text, {A: 1, B: 2})


def test_step_limit_stops_infinite_loops():
    text = """
    f($ir):
    L:
        goto L
    """
    fn = parse_tac(text)
    rec = InputRecord({A: 1, B: 2}, FMAP, RESOLVER)
    with pytest.raises(ExecutionError):
        execute_tac_udf(fn, (rec,), Collector(), max_steps=100)


def test_uninitialized_variable():
    with pytest.raises(ExecutionError):
        run("f($ir):\n    emit($never)\n    return", {A: 1, B: 2})
