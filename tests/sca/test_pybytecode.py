"""CPython bytecode front-end: supported shapes and conservative bails."""

import pytest

from repro.core import UnsupportedBytecode
from repro.core.udf import ParamKind
from repro.sca import analyze_udf, compile_to_tac

REC = (ParamKind.RECORD,)
LST = (ParamKind.RECORD_LIST,)
PAIR = (ParamKind.RECORD, ParamKind.RECORD)

FIELD_POS = 1  # module-level "final variable", resolved like the paper's


def helper_square(x):
    return x * x


class TestSupportedShapes:
    def test_module_constant_field_index(self):
        def udf(rec, out):
            v = rec.get_field(FIELD_POS)
            if v > 0:
                out.emit(rec.copy())

        props = analyze_udf(udf, REC)
        assert props.origin == "sca"
        assert props.reads.finite_items() == frozenset({(0, FIELD_POS)})

    def test_local_constant_field_index(self):
        def udf(rec, out):
            k = 2
            v = rec.get_field(k)
            if v > 0:
                out.emit(rec.copy())

        props = analyze_udf(udf, REC)
        assert props.reads.finite_items() == frozenset({(0, 2)})

    def test_value_helper_call_keeps_taint(self):
        def udf(rec, out):
            v = helper_square(rec.get_field(0))
            if v > 10:
                out.emit(rec.copy())

        props = analyze_udf(udf, REC)
        assert props.origin == "sca"
        assert (0, 0) in props.branch_reads.finite_items()

    def test_loop_over_group(self):
        def udf(records, out):
            total = 0
            for r in records:
                total = total + r.get_field(1)
            o = records[0].copy()
            o.set_field(1, total)
            out.emit(o)

        props = analyze_udf(udf, LST)
        assert props.origin == "sca"
        assert (0, 1) in props.reads.finite_items()
        assert 1 in props.writes_modified.finite_items()
        assert props.emit_bounds.exactly_one

    def test_binary_concat(self):
        def udf(left, right, out):
            out.emit(left.concat(right))

        props = analyze_udf(udf, PAIR)
        assert props.origin == "sca"
        assert props.emit_bounds.exactly_one
        assert props.reads.is_empty()

    def test_binary_reads_both_sides(self):
        def udf(left, right, out):
            if left.get_field(0) > right.get_field(1):
                out.emit(left.concat(right))

        props = analyze_udf(udf, PAIR)
        assert props.reads.finite_items() == frozenset({(0, 0), (1, 1)})

    def test_boolean_and_chain(self):
        def udf(rec, out):
            a = rec.get_field(0)
            b = rec.get_field(1)
            if a > 0 and b > 0:
                out.emit(rec.copy())

        props = analyze_udf(udf, REC)
        assert props.branch_reads.finite_items() == frozenset({(0, 0), (0, 1)})

    def test_chained_comparison(self):
        def udf(rec, out):
            if 0 <= rec.get_field(0) <= 10:
                out.emit(rec.copy())

        props = analyze_udf(udf, REC)
        assert props.origin == "sca"
        assert (0, 0) in props.branch_reads.finite_items()

    def test_string_method_on_value(self):
        def udf(rec, out):
            if rec.get_field(0).startswith("x"):
                out.emit(rec.copy())

        props = analyze_udf(udf, REC)
        assert props.origin == "sca"
        assert (0, 0) in props.branch_reads.finite_items()

    def test_is_none_pattern(self):
        def udf(rec, out):
            if rec.get_field(0) is None:
                return
            out.emit(rec.copy())

        props = analyze_udf(udf, REC)
        assert props.origin == "sca"
        assert (0, 0) in props.branch_reads.finite_items()


class TestConservativeBails:
    def assert_conservative(self, udf, kinds=REC):
        props = analyze_udf(udf, kinds)
        assert props.is_conservative()
        return props

    def test_record_escaping_to_helper(self):
        def helper(rec):
            return rec.get_field(0) == "x"

        def udf(rec, out):
            if helper(rec):
                out.emit(rec.copy())

        self.assert_conservative(udf)

    def test_group_escaping_to_helper(self):
        def helper(records):
            return len(records) > 2

        def udf(records, out):
            if helper(records):
                for r in records:
                    out.emit(r.copy())

        self.assert_conservative(udf, LST)

    def test_try_except(self):
        def udf(rec, out):
            try:
                out.emit(rec.copy())
            except ValueError:
                pass

        self.assert_conservative(udf)

    def test_closure(self):
        threshold = 5

        def udf(rec, out):
            if rec.get_field(0) > threshold:  # captures a closure cell
                out.emit(rec.copy())

        self.assert_conservative(udf)

    def test_list_comprehension_over_records(self):
        def udf(records, out):
            kept = [r for r in records]  # MAKE_FUNCTION in 3.11
            for r in kept:
                out.emit(r.copy())

        self.assert_conservative(udf, LST)

    def test_not_a_function(self):
        with pytest.raises(UnsupportedBytecode):
            compile_to_tac("not callable", REC)

    def test_generator_udf(self):
        def udf(rec, out):
            yield rec

        self.assert_conservative(udf)
