"""Property-based soundness of the static analyzer (Section 5).

The paper's safety argument: discovered property sets are *supersets* of
the true properties for any input.  We generate random TAC UDFs, run them
on random records, and check every observable behavior against the
analysis:

* emit counts lie within the derived bounds;
* any observed value change or drop of an input field is covered by the
  derived write set;
* any observed input-field influence on the output (Definition 3) is
  covered by the derived read set, and influence on the emit *count* by
  the branch-read set.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnnotationMode, Collector, FieldMap, InputRecord, attrs, map_udf
from repro.core.operators import MapOp
from repro.core.udf import ParamKind
from repro.sca import execute_tac_udf, parse_tac

WIDTH = 4
ATTRS = attrs(*(f"t.f{i}" for i in range(WIDTH)))
FMAP = FieldMap(ATTRS)


@st.composite
def tac_udf_texts(draw) -> str:
    lines = ["f(InputRecord $ir):"]
    temps: list[str] = []
    for i in range(draw(st.integers(0, 3))):
        pos = draw(st.integers(0, WIDTH - 1))
        lines.append(f"$g{i} := getField($ir, {pos})")
        temps.append(f"$g{i}")
    ctor = draw(st.sampled_from(["copy", "newrec"]))
    lines.append(f"$or := {ctor}($ir)")
    for i in range(draw(st.integers(0, 3))):
        pos = draw(st.integers(0, WIDTH + 1))
        kind = draw(st.integers(0, 3))
        if kind == 0 or not temps:
            lines.append(f"setField($or, {pos}, {draw(st.integers(-3, 3))})")
        elif kind == 1:
            lines.append(f"setField($or, {pos}, {draw(st.sampled_from(temps))})")
        elif kind == 2:
            t = draw(st.sampled_from(temps))
            lines.append(f"$d{i} := {t} + 1")
            lines.append(f"setField($or, {pos}, $d{i})")
        else:
            lines.append(f"setField($or, {pos}, null)")
    if temps and draw(st.booleans()):
        guard = draw(st.sampled_from(temps))
        threshold = draw(st.integers(-2, 2))
        lines.append(f"if {guard} < {threshold} goto SKIP")
    lines.append("emit($or)")
    if draw(st.booleans()):
        lines.append("emit($or)")
    lines.append("SKIP:")
    lines.append("return")
    return "\n".join(lines)


def run_udf(op: MapOp, values: dict) -> list[dict]:
    collector = Collector()
    rec = InputRecord(values, FMAP, op.resolver)
    execute_tac_udf(op.udf.fn, (rec,), collector)
    return collector.records()


def record_values(draw_ints) -> dict:
    return {a: v for a, v in zip(ATTRS, draw_ints)}


@settings(max_examples=120, deadline=None)
@given(
    text=tac_udf_texts(),
    base=st.lists(st.integers(-3, 3), min_size=WIDTH, max_size=WIDTH),
    flip_pos=st.integers(0, WIDTH - 1),
    flip_val=st.integers(-3, 3),
)
def test_analysis_covers_observed_behavior(text, base, flip_pos, flip_val):
    fn = parse_tac(text)
    op = MapOp("probe", map_udf(fn), FMAP)
    props = op.bound_props(AnnotationMode.SCA)

    values = record_values(base)
    outputs = run_udf(op, dict(values))

    # 1. Emit bounds hold.
    raw = op.udf.properties(AnnotationMode.SCA)
    assert raw.emit_bounds.contains(len(outputs)), (
        f"emitted {len(outputs)} outside bounds {raw.emit_bounds}"
    )

    # 2. Every observed change/drop of an input attribute is in the write set.
    for out_rec in outputs:
        for attr in ATTRS:
            if attr not in out_rec:
                assert attr in props.writes, f"dropped {attr} not in write set"
            elif out_rec[attr] != values[attr]:
                assert attr in props.writes, f"changed {attr} not in write set"
        for attr in out_rec:
            if attr not in ATTRS:
                assert attr in props.new_attrs, f"created {attr} unnoticed"

    # 3. Definition 3: flip one field; any influence must be covered.
    flip_attr = ATTRS[flip_pos]
    flipped = dict(values)
    flipped[flip_attr] = flip_val
    if flipped[flip_attr] == values[flip_attr]:
        return
    outputs_flipped = run_udf(op, flipped)
    if len(outputs_flipped) != len(outputs):
        assert flip_attr in props.branch_reads | props.reads
        return
    # Compare outputs ignoring the flipped attribute itself (and anything
    # the write set owns whose value may legitimately differ because it is
    # derived from the flipped field -- that derivation is exactly a read).
    influenced = False
    for left, right in zip(outputs, outputs_flipped):
        for attr in set(left) | set(right):
            if attr == flip_attr:
                continue
            if left.get(attr) != right.get(attr):
                influenced = True
    if influenced:
        assert flip_attr in props.reads, (
            f"{flip_attr} influences output but is not in the read set"
        )


@settings(max_examples=60, deadline=None)
@given(text=tac_udf_texts())
def test_analysis_is_deterministic(text):
    fn = parse_tac(text)
    kinds = (ParamKind.RECORD,)
    from repro.sca import analyze_tac

    assert analyze_tac(fn, kinds) == analyze_tac(fn, kinds)
