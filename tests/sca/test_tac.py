"""TAC parser, CFG construction, reaching definitions, and chains."""

import pytest

from repro.core import AnalysisError
from repro.sca import ControlFlowGraph, build_chains, parse_tac, reaching_definitions
from repro.sca.tac import (
    BinOp,
    CopyRec,
    Emit,
    GetField,
    Goto,
    IfTrue,
    Return,
    SetField,
)

F2_TEXT = """
f2(InputRecord $ir):
    $a := getField($ir, 0)
    if $a < 0 goto L1
    $or := copy($ir)
    emit($or)
L1:
    return
"""

LOOP_TEXT = """
loopy(InputRecord $recs):
    $it := iter($recs)
L0:
    $r := next($it) else LEND
    $or := copy($r)
    emit($or)
    goto L0
LEND:
    return
"""


class TestParser:
    def test_paper_f2_shape(self):
        fn = parse_tac(F2_TEXT)
        kinds = [type(i) for i in fn.instructions]
        assert kinds == [GetField, BinOp, IfTrue, CopyRec, Emit, Return]
        branch = fn.instructions[2]
        assert branch.target == 5  # L1 resolves to the return

    def test_comparison_sugar_lowered(self):
        fn = parse_tac(F2_TEXT)
        compare = fn.instructions[1]
        assert compare.op == "<"

    def test_unknown_label_rejected(self):
        with pytest.raises(AnalysisError):
            parse_tac("f($r):\n    goto NOWHERE")

    def test_operand_kinds(self):
        fn = parse_tac(
            """
            f($r):
                $x := 3
                $y := 'abc'
                $z := true
                $n := null
                return
            """
        )
        values = [i.value for i in fn.instructions[:4]]
        assert values == [3, "abc", True, None]

    def test_setfield_and_arith(self):
        fn = parse_tac(
            """
            f($r):
                $a := getField($r, 1)
                $b := $a * 2
                $o := copy($r)
                setField($o, 1, $b)
                emit($o)
                return
            """
        )
        assert isinstance(fn.instructions[3], SetField)

    def test_malformed_statement(self):
        with pytest.raises(AnalysisError):
            parse_tac("f($r):\n    frobnicate everything")

    def test_goto(self):
        fn = parse_tac("f($r):\nL:\n    goto L")
        assert isinstance(fn.instructions[0], Goto)
        assert fn.instructions[0].target == 0


class TestCFG:
    def test_blocks_of_f2(self):
        cfg = ControlFlowGraph(parse_tac(F2_TEXT))
        # blocks: [get,cmp,if] [copy,emit] [return]
        assert len(cfg.blocks) == 3
        assert cfg.blocks[0].successors == [1, 2]
        assert cfg.blocks[1].successors == [2]
        assert cfg.exit_blocks == [2]

    def test_loop_has_back_edge(self):
        cfg = ControlFlowGraph(parse_tac(LOOP_TEXT))
        sccs = cfg.sccs()
        cyclic = [i for i in range(len(sccs)) if cfg.scc_is_cyclic(i)]
        assert len(cyclic) == 1

    def test_dominators(self):
        cfg = ControlFlowGraph(parse_tac(F2_TEXT))
        dom = cfg.dominators()
        assert 0 in dom[1]  # entry dominates the emit block
        assert 1 not in dom[2]  # the emit block does not dominate the exit

    def test_instr_dominates_same_block(self):
        cfg = ControlFlowGraph(parse_tac(F2_TEXT))
        assert cfg.instr_dominates(0, 2)
        assert not cfg.instr_dominates(2, 0)


class TestDataflow:
    def test_reaching_definitions(self):
        fn = parse_tac(
            """
            f($r):
                $x := 1
                $y := getField($r, 0)
                if $y goto L
                $x := 2
            L:
                $z := $x + 0
                return
            """
        )
        cfg = ControlFlowGraph(fn)
        reaching = reaching_definitions(cfg)
        use_index = next(
            i for i, ins in enumerate(fn.instructions) if isinstance(ins, BinOp) and ins.op == "+"
        )
        defs_of_x = {d for d in reaching.reach_in[use_index] if d[1] == "$x"}
        assert len(defs_of_x) == 2  # both definitions of $x reach the join

    def test_chains(self):
        fn = parse_tac(F2_TEXT)
        cfg = ControlFlowGraph(fn)
        chains = build_chains(cfg)
        # $a defined at 0, used at 1 (the comparison)
        assert chains.uses_of(0, "$a") == frozenset({1})
        assert (0, "$a") in chains.defs_for(1, "$a")

    def test_param_definitions_reach_uses(self):
        fn = parse_tac(F2_TEXT)
        chains = build_chains(ControlFlowGraph(fn))
        defs = chains.defs_for(0, "$ir")
        assert any(idx < 0 for idx, _ in defs)  # parameter pseudo-definition
