"""Property analyzer over TAC: the Section 3 example and edge cases."""

import pytest

from repro.core import KatBehavior
from repro.core.udf import ParamKind
from repro.sca import AnalysisEscape, analyze_tac, parse_tac

REC = (ParamKind.RECORD,)
LST = (ParamKind.RECORD_LIST,)


def analyze(text, kinds=REC):
    return analyze_tac(parse_tac(text), kinds)


class TestPaperExample:
    """Section 3: R_f1={B}, W_f1={B}; R_f2={A}, W_f2={}; R_f3={A,B}, W_f3={A}."""

    def test_f1(self):
        props = analyze(
            """
            f1(InputRecord $ir):
                $b := getField($ir, 1)
                $or := copy($ir)
                if $b >= 0 goto L1
                $nb := -$b
                setField($or, 1, $nb)
            L1:
                emit($or)
                return
            """
        )
        assert props.reads.finite_items() == frozenset({(0, 1)})
        assert props.writes_modified.finite_items() == frozenset({1})
        assert (props.emit_bounds.lo, props.emit_bounds.hi) == (1, 1)

    def test_f2(self):
        props = analyze(
            """
            f2(InputRecord $ir):
                $a := getField($ir, 0)
                if $a < 0 goto L1
                $or := copy($ir)
                emit($or)
            L1:
                return
            """
        )
        assert props.reads.finite_items() == frozenset({(0, 0)})
        assert props.writes_modified.is_empty()
        assert props.branch_reads.finite_items() == frozenset({(0, 0)})
        assert (props.emit_bounds.lo, props.emit_bounds.hi) == (0, 1)

    def test_f3(self):
        props = analyze(
            """
            f3(InputRecord $ir):
                $a := getField($ir, 0)
                $b := getField($ir, 1)
                $sum := $a + $b
                $or := copy($ir)
                setField($or, 0, $sum)
                emit($or)
                return
            """
        )
        assert props.reads.finite_items() == frozenset({(0, 0), (0, 1)})
        assert props.writes_modified.finite_items() == frozenset({0})
        assert props.branch_reads.is_empty()


class TestReadUsage:
    def test_unused_getfield_not_a_read(self):
        props = analyze(
            """
            f($ir):
                $a := getField($ir, 0)
                $or := copy($ir)
                emit($or)
                return
            """
        )
        assert props.reads.is_empty()

    def test_pure_copy_not_a_read(self):
        props = analyze(
            """
            f($ir):
                $a := getField($ir, 0)
                $or := newrec($ir)
                setField($or, 0, $a)
                emit($or)
                return
            """
        )
        assert props.reads.is_empty()
        assert (0, 0, 0) in props.copies

    def test_copy_to_other_position_recorded(self):
        props = analyze(
            """
            f($ir):
                $a := getField($ir, 0)
                $or := copy($ir)
                setField($or, 1, $a)
                emit($or)
                return
            """
        )
        assert (1, 0, 0) in props.copies

    def test_mixed_copy_and_modify_degrades_copy_source_to_read(self):
        # Hypothesis-found soundness hole: a constant write followed by a
        # copy write to the same position left the output depending on
        # the copy's source field with neither a `copies` entry nor a
        # read — the copy-through exemption only holds for pure copies.
        props = analyze(
            """
            f($ir):
                $a := getField($ir, 1)
                $or := copy($ir)
                setField($or, 0, 0)
                setField($or, 0, $a)
                emit($or)
                return
            """
        )
        assert (0, 1) in props.reads.finite_items()
        assert not props.copies
        assert 0 in props.writes_modified.finite_items()

    def test_dynamic_write_site_degrades_static_copy_to_read(self):
        # Same exemption failure on the dynamic-write path: the site skips
        # per-position accounting entirely, so its static copy writes must
        # fall back to plain reads of their sources.
        props = analyze(
            """
            f($ir):
                $a := getField($ir, 1)
                $i := getField($ir, 0)
                $or := copy($ir)
                setField($or, 2, $a)
                setField($or, $i, 7)
                emit($or)
                return
            """
        )
        assert (0, 1) in props.reads.finite_items()
        assert not props.copies

    def test_taint_through_assignment_and_call(self):
        props = analyze(
            """
            f($ir):
                $a := getField($ir, 0)
                $b := $a
                $c := call abs($b)
                if $c goto L
                return
            L:
                $or := copy($ir)
                emit($or)
                return
            """
        )
        assert (0, 0) in props.reads.finite_items()
        assert (0, 0) in props.branch_reads.finite_items()

    def test_dynamic_position_widens_to_all(self):
        props = analyze(
            """
            f($ir):
                $i := getField($ir, 0)
                $v := getField($ir, $i)
                $or := copy($ir)
                setField($or, 1, $v)
                emit($or)
                return
            """
        )
        assert props.reads.is_all()


class TestWriteSets:
    def test_implicit_projection(self):
        props = analyze(
            """
            f($ir):
                $or := newrec($ir)
                setField($or, 0, 7)
                emit($or)
                return
            """
        )
        assert 0 in props.writes_modified.finite_items()
        assert props.writes_projected.cofinite
        assert 0 not in props.writes_projected.resolve(range(4))

    def test_conditional_set_on_projection_also_projected(self):
        props = analyze(
            """
            f($ir):
                $a := getField($ir, 0)
                $or := newrec($ir)
                if $a < 0 goto L
                setField($or, 1, 5)
            L:
                emit($or)
                return
            """
        )
        # position 1 written on one path, dropped on the other
        assert 1 in props.writes_modified.finite_items()
        assert 1 in props.writes_projected.resolve(range(4))

    def test_explicit_null_projection(self):
        props = analyze(
            """
            f($ir):
                $or := copy($ir)
                setField($or, 1, null)
                emit($or)
                return
            """
        )
        assert 1 in props.writes_projected.finite_items()

    def test_unemitted_record_contributes_nothing(self):
        props = analyze(
            """
            f($ir):
                $scratch := copy($ir)
                setField($scratch, 0, 1)
                $or := copy($ir)
                emit($or)
                return
            """
        )
        assert props.writes_modified.is_empty()

    def test_dynamic_write_position_widens(self):
        props = analyze(
            """
            f($ir):
                $i := getField($ir, 1)
                $or := copy($ir)
                setField($or, $i, 3)
                emit($or)
                return
            """
        )
        assert props.writes_modified.is_all()


class TestEmitBounds:
    def test_emit_in_loop_unbounded(self):
        props = analyze(
            """
            f($recs):
                $it := iter($recs)
            L0:
                $r := next($it) else LD
                $or := copy($r)
                emit($or)
                goto L0
            LD:
                return
            """,
            LST,
        )
        assert props.emit_bounds.hi is None
        assert props.emit_bounds.lo == 0

    def test_two_exclusive_emits(self):
        props = analyze(
            """
            f($ir):
                $a := getField($ir, 0)
                $or := copy($ir)
                if $a < 0 goto L
                emit($or)
                return
            L:
                emit($or)
                return
            """
        )
        assert (props.emit_bounds.lo, props.emit_bounds.hi) == (1, 1)

    def test_sequential_emits_add(self):
        props = analyze(
            """
            f($ir):
                $or := copy($ir)
                emit($or)
                emit($or)
                return
            """
        )
        assert (props.emit_bounds.lo, props.emit_bounds.hi) == (2, 2)

    def test_kat_one_per_group(self):
        props = analyze(
            """
            f($recs):
                $r := getitem($recs, 0)
                $or := copy($r)
                emit($or)
                return
            """,
            LST,
        )
        assert props.kat_behavior is KatBehavior.ONE_PER_GROUP


class TestEscapes:
    def test_record_into_opaque_call(self):
        with pytest.raises(AnalysisEscape):
            analyze(
                """
                f($ir):
                    $x := call helper($ir)
                    return
                """
            )

    def test_list_into_opaque_call(self):
        with pytest.raises(AnalysisEscape):
            analyze("f($recs):\n    $x := call helper($recs)\n    return", LST)

    def test_len_of_list_is_safe(self):
        props = analyze(
            """
            f($recs):
                $n := call len($recs)
                $r := getitem($recs, 0)
                $or := copy($r)
                setField($or, 1, $n)
                emit($or)
                return
            """,
            LST,
        )
        assert props.origin == "sca"
        assert 1 in props.writes_modified.finite_items()

    def test_record_in_arithmetic(self):
        with pytest.raises(AnalysisEscape):
            analyze("f($ir):\n    $x := $ir + 1\n    return")

    def test_emit_non_record(self):
        with pytest.raises(AnalysisEscape):
            analyze("f($ir):\n    $x := 3\n    emit($x)\n    return")
