"""Relational OLAP on TPC-H (Section 7.2): queries 7 and 15.

Demonstrates the full optimizer pipeline on relational flows built purely
from black-box UDFs: bushy join enumeration on Q7, the invariant-grouping
(aggregation push-up/down) rewrite on Q15, and the physical strategies the
cost-based optimizer picks (partition reuse vs broadcasting).

Run:  python examples/relational_tpch.py
"""

from repro import AnnotationMode, Engine, Optimizer, evaluate, projected_approx_equal
from repro.core.plan import linearize, render_tree
from repro.datagen import TpchScale
from repro.workloads import build_q7, build_q15


def show_q15() -> None:
    print("=" * 72)
    print("TPC-H Q15: aggregation push-up (invariant grouping, Section 4.3.2)")
    print("=" * 72)
    workload = build_q15(TpchScale(suppliers=50, customers=80, orders=600))
    result = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
    ).optimize(workload.plan)

    print(f"enumerated {result.plan_count} orders "
          f"(filter < aggregate is fixed; the PK-FK join floats):")
    engine = Engine(workload.params, workload.true_costs)
    baseline = evaluate(workload.plan, workload.data)
    for plan in result.ranked:
        execution = engine.execute(plan.physical, workload.data)
        ok = projected_approx_equal(
            execution.records, baseline, workload.sink_attrs
        )
        print(f"\nrank {plan.rank}: {' -> '.join(linearize(plan.body))}"
              f"   est {plan.cost:.1f}s, simulated {execution.report.minutes_label()},"
              f" result identical: {ok}")
        print(plan.physical.describe(indent=1))


def show_q7() -> None:
    print()
    print("=" * 72)
    print("TPC-H Q7: bushy join enumeration over black-box Match operators")
    print("=" * 72)
    workload = build_q7(TpchScale(suppliers=50, customers=80, orders=600))
    result = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
    ).optimize(workload.plan)
    print(f"enumerated {result.plan_count} alternative data flows "
          f"in {result.enumeration_seconds * 1000:.0f} ms")
    print(f"\nimplemented flow (rank {result.rank_of(result.original_body)} "
          f"of {result.plan_count}):")
    print(render_tree(result.original_body))
    print("\noptimizer's choice (rank 1):")
    print(render_tree(result.best.body))

    engine = Engine(workload.params, workload.true_costs)
    t_best = engine.execute(result.best.physical, workload.data)
    implemented = next(
        p for p in result.ranked
        if linearize(p.body) == linearize(result.original_body)
    )
    t_impl = engine.execute(implemented.physical, workload.data)
    print(f"\nsimulated runtime: implemented {t_impl.report.minutes_label()}, "
          f"optimized {t_best.report.minutes_label()} "
          f"({t_impl.seconds / t_best.seconds:.2f}x faster)")
    assert projected_approx_equal(
        t_best.records, t_impl.records, workload.sink_attrs
    )
    print("results identical: True")


if __name__ == "__main__":
    show_q15()
    show_q7()
