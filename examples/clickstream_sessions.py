"""Non-relational data flow optimization (Section 7.2 / Figure 4).

The clickstream task contains two *non-relational* Reduce UDFs — a
session-level all-or-nothing filter and a session condenser — plus two
joins.  The optimizer pushes the selective login join below both Reduces,
an optimization the paper notes no other system of its time could derive.

This example also shows the Table 1 effect: the buy-session filter passes
its record group to a helper, defeating static analysis; with manual
annotations the optimizer sees more reorderings than with SCA.

Run:  python examples/clickstream_sessions.py
"""

from repro import AnnotationMode, Engine, Optimizer, evaluate, projected_approx_equal
from repro.core.plan import linearize
from repro.datagen import ClickScale
from repro.workloads import build_clickstream


def main() -> None:
    workload = build_clickstream(ClickScale(sessions=800))
    print("Task: extract buy sessions of logged-in users, with user details")
    print("Implemented flow:", " -> ".join(linearize(workload.plan)))

    for mode in (AnnotationMode.MANUAL, AnnotationMode.SCA):
        result = Optimizer(
            workload.catalog, workload.hints, mode, workload.params
        ).optimize(workload.plan)
        print(f"\n[{mode.value} properties] {result.plan_count} valid orders")
        if mode is AnnotationMode.SCA:
            print(
                "  (fewer than manual: 'filter_buy_sessions' passes its record\n"
                "   group to a helper, so SCA falls back to conservative\n"
                "   read-all/write-all properties — safety through conservatism)"
            )

    # Optimize with full knowledge and execute best vs implemented.
    result = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.MANUAL, workload.params
    ).optimize(workload.plan)
    engine = Engine(workload.params, workload.true_costs)
    best = result.best
    implemented_rank = result.rank_of(result.original_body)
    implemented = result.ranked[implemented_rank - 1]

    t_best = engine.execute(best.physical, workload.data)
    t_impl = engine.execute(implemented.physical, workload.data)

    print(f"\nbest plan (rank 1):        {' -> '.join(linearize(best.body))}")
    print(f"implemented plan (rank {implemented_rank}): "
          f"{' -> '.join(linearize(implemented.body))}")
    print(f"\nsimulated runtimes: best {t_best.report.minutes_label()}, "
          f"implemented {t_impl.report.minutes_label()} "
          f"-> {t_impl.seconds / t_best.seconds:.2f}x improvement")

    baseline = evaluate(workload.plan, workload.data)
    assert projected_approx_equal(t_best.records, baseline, workload.sink_attrs)
    print(f"result identical: True ({len(t_best.records)} enriched sessions)")


if __name__ == "__main__":
    main()
