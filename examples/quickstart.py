"""Quickstart: the paper's Section 3 example, end to end.

Three Map operators over records <A, B>:

  f1 replaces B with |B|        f2 keeps records with A >= 0
  f3 replaces A with A + B

The static analyzer discovers that f1 and f2 touch disjoint attributes
(they reorder), while f3 conflicts with both.  We enumerate the plan
space, execute every alternative, and confirm all produce the same result.

Run:  python examples/quickstart.py
"""

from repro import (
    AnnotationMode,
    Catalog,
    FieldMap,
    MapOp,
    PlanContext,
    Source,
    SourceStats,
    attrs,
    chain,
    datasets_equal,
    enumerate_flows,
    evaluate,
    map_udf,
    render_tree,
)
from repro.core.plan import linearize


# --- the three UDFs, written against the record API -------------------------


def f1_abs_b(rec, out):
    b = rec.get_field(1)
    r = rec.copy()
    if b < 0:
        r.set_field(1, -b)
    out.emit(r)


def f2_keep_positive_a(rec, out):
    if rec.get_field(0) >= 0:
        out.emit(rec.copy())


def f3_a_plus_b(rec, out):
    r = rec.copy()
    r.set_field(0, rec.get_field(0) + rec.get_field(1))
    out.emit(r)


def main() -> None:
    a, b = attrs("I.A", "I.B")
    source = Source("I", (a, b))
    fmap = FieldMap((a, b))
    m1 = MapOp("f1", map_udf(f1_abs_b), fmap)
    m2 = MapOp("f2", map_udf(f2_keep_positive_a), fmap)
    m3 = MapOp("f3", map_udf(f3_a_plus_b), fmap)
    flow = chain(source, m1, m2, m3)

    print("Implemented data flow:")
    print(render_tree(flow))

    # 1. Open the black boxes: derive read/write sets from the bytecode.
    ctx = PlanContext(_catalog(), AnnotationMode.SCA)
    print("\nStatic code analysis (Section 5):")
    for op in (m1, m2, m3):
        props = ctx.props(op)
        print(
            f"  {op.name}: reads={sorted(x.name for x in props.reads)} "
            f"writes={sorted(x.name for x in props.writes)} "
            f"emits per call: [{props.emit_bounds.lo}, "
            f"{props.emit_bounds.hi if props.emit_bounds.hi is not None else 'inf'}]"
        )

    # 2. Enumerate all valid reordered flows (Section 6).
    alternatives = enumerate_flows(flow, ctx)
    print(f"\nEnumerated {len(alternatives)} valid operator orders:")
    for alt in alternatives:
        print("  ", " -> ".join(linearize(alt)))

    # 3. Execute every alternative: identical results, different costs.
    data = {"I": [{a: 2, b: -3}, {a: -2, b: -3}, {a: 5, b: 1}]}
    baseline = evaluate(flow, data)
    print("\nOutput of the implemented flow:")
    for row in baseline:
        print(f"   A={row[a]}, B={row[b]}")
    for alt in alternatives:
        assert datasets_equal(evaluate(alt, data), baseline)
    print("\nAll alternatives produce the same result — reordering is safe.")


def _catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_source("I", SourceStats(row_count=3))
    return catalog


if __name__ == "__main__":
    main()
