"""Biomedical text mining (Section 7.2): ordering expensive NLP annotators.

A pipeline of Map operators — tokenizer, POS tagger, four entity
annotators, relation extractor — where every annotator also filters.  The
24 valid orders differ by almost an order of magnitude in runtime; the
optimizer finds the cheap one from black-box properties alone.

Run:  python examples/text_mining.py
"""

from repro import AnnotationMode
from repro.bench import render_figure, run_experiment
from repro.core.plan import linearize
from repro.datagen import CorpusScale
from repro.workloads import build_textmining


def main() -> None:
    workload = build_textmining(CorpusScale(documents=1200))
    print("Task: find gene~drug relations in abstracts")
    print("Annotator costs/selectivities (hints):")
    for name, hint in workload.hints.items():
        sel = f"{hint.selectivity:.2f}" if hint.selectivity is not None else "  - "
        print(f"  {name:<18} cpu/call={hint.cpu_per_call:>6.1f}  selectivity={sel}")

    outcome = run_experiment(workload, picks=8, mode=AnnotationMode.SCA)
    print()
    print(
        render_figure(
            outcome,
            "Text mining: plan quality across the 24 enumerated orders",
            "(paper Figure 6: best 16:53, worst 168:41, ~10x)",
        )
    )

    best_order = linearize(outcome.optimization.ranked[0].body)
    worst_order = linearize(outcome.optimization.ranked[-1].body)
    print("\nbest order :", " -> ".join(best_order))
    print("worst order:", " -> ".join(worst_order))
    print(
        "\nThe optimizer runs cheap, selective annotators first and delays\n"
        "the expensive gene NER until most documents are filtered out —\n"
        "derived purely from emit bounds and read/write sets, with no\n"
        "knowledge of what the annotators compute."
    )


if __name__ == "__main__":
    main()
