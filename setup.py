"""Setup script (classic layout: the environment has no `wheel` package,
so PEP 517 editable builds are unavailable offline)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Opening the Black Boxes in Data Flow Optimization' "
        "(Hueske et al., PVLDB 2012): a UDF-reordering data flow optimizer "
        "with static code analysis, plan enumeration, cost-based physical "
        "optimization, and a simulated parallel execution engine."
    ),
    license="Apache-2.0",
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
